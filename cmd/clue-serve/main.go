// Command clue-serve runs the CLUE forwarding engine as a concurrent
// HTTP service: lock-free RCU snapshot lookups dispatched to partition
// workers, with live announce/withdraw batching through the incremental
// update pipeline and per-batch TTF accounting.
//
// Usage:
//
//	clue-serve [-addr 127.0.0.1:8080] [-fib table.rib | -router rrc01 | -routes 20000]
//	           [-workers 4] [-queue 256] [-batch 64] [-cache 1024]
//	           [-tcams 4] [-buckets 32] [-router-scale 10] [-seed 42]
//	           [-rebalance-interval 0] [-rebalance-threshold 1.25]
//	           [-rebalance-max-move 0.25]
//	clue-serve -follow 127.0.0.1:9090 [-addr ...] [-workers ...] ...
//
// With -follow the server runs as a read-only replica: instead of
// loading a local FIB it connects to a clue-collector feed, bootstraps
// from its snapshot and applies the replicated update stream through
// the normal writer pipeline. The lookup, stats, metrics, health and
// debug surfaces are unchanged; /announce and /withdraw return 403
// (the collector owns the table); /stats gains a "feed" section and
// /metrics gains clue_feed_* gauges (state, lag, reconnects, hash
// checks/mismatches); /healthz reports the feed state and lag and goes
// degraded while the replica is disconnected or resyncing.
//
// Endpoints:
//
//	GET  /lookup?addr=A[&path=snapshot] — resolve A (worker dispatch by
//	     default; path=snapshot uses the direct RCU read side)
//	POST /lookup/batch {"addrs":["1.2.3.4",...],"path":"snapshot"|""} —
//	     resolve up to 8192 addresses against one snapshot (grouped
//	     worker dispatch by default)
//	POST /announce {"prefix":"10.0.0.0/8","next_hop":3} — apply + TTF
//	POST /withdraw {"prefix":"10.0.0.0/8"} — apply + TTF
//	GET  /stats    — full runtime statistics as JSON
//	GET  /metrics  — Prometheus text exposition
//	GET  /healthz  — liveness + degraded-mode status (503 when no
//	     worker is healthy; the snapshot path still answers then)
//	GET  /debug/latency — latency/queue-depth histogram summaries
//	     (p50/p90/p99/max plus sparse power-of-two buckets) as JSON
//	GET  /debug/pprof/* — the standard net/http/pprof profiling surface
//	GET  /debug/trace?sec=N — capture a runtime/trace for N seconds
//	     (max 60) and stream it; enabled with -debug-trace
//	POST /admin/worker/fail {"worker":N} — take worker N out of service
//	     and re-home its range across the survivors
//	POST /admin/worker/recover {"worker":N} — return worker N to service
//	GET  /admin/worker — per-worker health states
//	POST /admin/rebalance — run one forced load-aware repartitioning
//	     pass now and report its outcome (recut or skip reason,
//	     imbalance before/after, routes moved)
//
// SIGINT/SIGTERM drain the listener and the update queue, then exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/trace"
	"strconv"
	"syscall"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/ribio"
	"clue/internal/serve"
	"clue/internal/update"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "clue-serve:", err)
		os.Exit(1)
	}
}

// run builds the runtime, serves until ctx is cancelled, then drains.
// ready (optional) receives the bound listener address once accepting.
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("clue-serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	fibPath := fs.String("fib", "", "load the FIB from a ribio file")
	router := fs.String("router", "", "load a fibgen router profile (e.g. rrc01)")
	routerScale := fs.Int("router-scale", 10, "divide the router profile size by this factor")
	nRoutes := fs.Int("routes", 20000, "synthetic FIB size (when -fib/-router unset)")
	seed := fs.Int64("seed", 42, "synthetic FIB seed")
	workers := fs.Int("workers", 0, "partition worker goroutines (0 = TCAM count)")
	queue := fs.Int("queue", 256, "per-worker queue depth")
	batch := fs.Int("batch", 64, "max update ops per snapshot swap")
	cache := fs.Int("cache", 1024, "per-worker DRed-analog cache size")
	tcams := fs.Int("tcams", 4, "TCAM chip count in the underlying system")
	buckets := fs.Int("buckets", 32, "range partition count in the underlying system")
	debugTrace := fs.Bool("debug-trace", false, "enable the /debug/trace runtime-trace capture endpoint")
	follow := fs.String("follow", "", "run as a read-only replica of the clue-collector feed at this address")
	rebInterval := fs.Duration("rebalance-interval", 0, "load-aware repartitioning pass interval (0 disables the loop; /admin/rebalance still works)")
	rebThreshold := fs.Float64("rebalance-threshold", 0, "imbalance ratio (max partition traffic / mean) that triggers a recut (0 = default 1.25)")
	rebMaxMove := fs.Float64("rebalance-max-move", 0, "max fraction of routes re-homed per recut (0 = default 0.25)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scfg := serve.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		BatchMax:   *batch,
		CacheSize:  *cache,
		Rebalance: serve.RebalanceConfig{
			Interval:           *rebInterval,
			ImbalanceThreshold: *rebThreshold,
			MaxMoveFraction:    *rebMaxMove,
		},
		System: serve.SystemConfig{TCAMs: *tcams, Buckets: *buckets},
	}
	var (
		rt      *serve.Runtime
		fl      *feed.Follower
		source  string
		nLoaded int
	)
	if *follow != "" {
		if *fibPath != "" || *router != "" {
			return errors.New("-follow replaces the local FIB source; drop -fib/-router")
		}
		var err error
		rt, fl, err = followFeed(ctx, *follow, scfg)
		if err != nil {
			return err
		}
	} else {
		var origin string
		routes, origin, err := loadRoutes(*fibPath, *router, *routerScale, *nRoutes, *seed)
		if err != nil {
			return err
		}
		rt, err = serve.New(routes, scfg)
		if err != nil {
			return err
		}
		nLoaded = len(routes)
		source = origin
	}
	closeAll := func() {
		if fl != nil {
			fl.Close()
		}
		rt.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeAll()
		return err
	}
	st := rt.Stats()
	if fl != nil {
		fmt.Fprintf(out, "clue-serve: replica of %s — %d compressed routes at feed seq %d, %d workers, listening on %s\n",
			*follow, st.Routes, fl.Stats().LastApplied, st.Workers, ln.Addr())
	} else {
		fmt.Fprintf(out, "clue-serve: %s — %d routes compressed to %d, %d workers, listening on %s\n",
			source, nLoaded, st.Routes, st.Workers, ln.Addr())
	}
	if ready != nil {
		ready(ln.Addr())
	}

	srv := &http.Server{Handler: newHandler(rt, *debugTrace, fl)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "clue-serve: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			closeAll()
			return err
		}
		closeAll()
		final := rt.Stats()
		fmt.Fprintf(out, "clue-serve: drained — %d lookups (%d dispatched, %.2f%% diverted), %d updates in %d batches\n",
			final.SnapshotLookups+final.Dispatched, final.Dispatched,
			100*final.DivertRate(), final.Announces+final.Withdraws, final.Batches)
		return nil
	case err := <-errCh:
		closeAll()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// loadRoutes resolves the FIB source precedence: file, router profile,
// then synthetic.
func loadRoutes(fibPath, router string, routerScale, nRoutes int, seed int64) ([]ip.Route, string, error) {
	switch {
	case fibPath != "":
		f, err := os.Open(fibPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		routes, err := ribio.Read(f)
		if err != nil {
			return nil, "", err
		}
		return routes, fmt.Sprintf("fib %s", fibPath), nil
	case router != "":
		profiles, err := fibgen.ScaleRouters(routerScale)
		if err != nil {
			return nil, "", err
		}
		for _, r := range profiles {
			if r.ID == router {
				fib, err := fibgen.Generate(r.Config())
				if err != nil {
					return nil, "", err
				}
				return fib.Routes(), fmt.Sprintf("router %s (%s, scale 1/%d)", r.ID, r.Location, routerScale), nil
			}
		}
		return nil, "", fmt.Errorf("unknown router profile %q", router)
	default:
		fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: nRoutes})
		if err != nil {
			return nil, "", err
		}
		return fib.Routes(), fmt.Sprintf("synthetic FIB (%d routes, seed %d)", nRoutes, seed), nil
	}
}

// followFeed connects a follower to a clue-collector and blocks until
// the bootstrap snapshot has built the runtime (or ctx is cancelled).
// The runtime pointer is stable after bootstrap: later re-snapshots
// are reconciled through it, never by replacing it.
func followFeed(ctx context.Context, addr string, scfg serve.Config) (*serve.Runtime, *feed.Follower, error) {
	app := feed.NewRuntimeApplier(scfg)
	fl, err := feed.NewFollower(feed.FollowerConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 2*time.Second)
		},
		Applier: app,
	})
	if err != nil {
		return nil, nil, err
	}
	bootDeadline := time.Now().Add(30 * time.Second)
	for app.Runtime() == nil {
		if err := ctx.Err(); err != nil {
			fl.Close()
			return nil, nil, err
		}
		if time.Now().After(bootDeadline) {
			fl.Close()
			return nil, nil, fmt.Errorf("no bootstrap snapshot from %s within 30s", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return app.Runtime(), fl, nil
}

// maxBatchAddrs bounds one /lookup/batch request.
const maxBatchAddrs = 8192

// newHandler wires the HTTP surface around the runtime. traceCapture
// enables the /debug/trace capture endpoint (the -debug-trace flag);
// the rest of the debug surface is always on. fl is non-nil in replica
// mode (-follow): local mutations are rejected and the stats, metrics
// and health surfaces grow the replication feed's state.
func newHandler(rt *serve.Runtime, traceCapture bool, fl *feed.Follower) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /lookup", func(w http.ResponseWriter, r *http.Request) {
		a, err := ip.ParseAddr(r.URL.Query().Get("addr"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		type lookupResp struct {
			Addr     string `json:"addr"`
			NextHop  uint32 `json:"next_hop"`
			Prefix   string `json:"prefix,omitempty"`
			Found    bool   `json:"found"`
			Path     string `json:"path"`
			Home     int    `json:"home,omitempty"`
			Worker   int    `json:"worker,omitempty"`
			Diverted bool   `json:"diverted,omitempty"`
			CacheHit bool   `json:"cache_hit,omitempty"`
			Version  uint64 `json:"snapshot_version"`
		}
		resp := lookupResp{Addr: a.String()}
		if r.URL.Query().Get("path") == "snapshot" {
			resp.Path = "snapshot"
			hop, pfx, ok := rt.Lookup(a)
			resp.NextHop, resp.Found, resp.Version = uint32(hop), ok, rt.Version()
			if ok {
				resp.Prefix = pfx.String()
			}
		} else {
			resp.Path = "worker"
			res, err := rt.Dispatch(a)
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			resp.NextHop, resp.Found, resp.Version = uint32(res.Hop), res.Found, res.Version
			resp.Home, resp.Worker, resp.Diverted, resp.CacheHit = res.Home, res.Worker, res.Diverted, res.CacheHit
			if res.Found {
				resp.Prefix = res.Prefix.String()
			}
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("POST /lookup/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addrs []string `json:"addrs"`
			Path  string   `json:"path"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if len(req.Addrs) == 0 {
			httpError(w, http.StatusBadRequest, errors.New("addrs must be a non-empty array"))
			return
		}
		if len(req.Addrs) > maxBatchAddrs {
			httpError(w, http.StatusBadRequest, fmt.Errorf("batch of %d addrs exceeds limit %d", len(req.Addrs), maxBatchAddrs))
			return
		}
		addrs := make([]ip.Addr, len(req.Addrs))
		for i, s := range req.Addrs {
			a, err := ip.ParseAddr(s)
			if err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			addrs[i] = a
		}
		type batchItem struct {
			Addr     string `json:"addr"`
			NextHop  uint32 `json:"next_hop"`
			Prefix   string `json:"prefix,omitempty"`
			Found    bool   `json:"found"`
			Worker   int    `json:"worker,omitempty"`
			Diverted bool   `json:"diverted,omitempty"`
			CacheHit bool   `json:"cache_hit,omitempty"`
		}
		type batchResp struct {
			Count   int         `json:"count"`
			Path    string      `json:"path"`
			Version uint64      `json:"snapshot_version"`
			Results []batchItem `json:"results"`
		}
		resp := batchResp{Count: len(addrs), Results: make([]batchItem, len(addrs))}
		if req.Path == "snapshot" {
			resp.Path = "snapshot"
			results, version := rt.LookupBatch(addrs, nil)
			resp.Version = version
			for i, res := range results {
				item := batchItem{Addr: addrs[i].String(), NextHop: uint32(res.Hop), Found: res.Found}
				if res.Found {
					item.Prefix = res.Prefix.String()
				}
				resp.Results[i] = item
			}
		} else {
			resp.Path = "worker"
			results, err := rt.DispatchBatch(addrs, nil)
			if err != nil {
				httpError(w, http.StatusServiceUnavailable, err)
				return
			}
			for i, res := range results {
				item := batchItem{
					Addr: addrs[i].String(), NextHop: uint32(res.Hop), Found: res.Found,
					Worker: res.Worker, Diverted: res.Diverted, CacheHit: res.CacheHit,
				}
				if res.Found {
					item.Prefix = res.Prefix.String()
				}
				resp.Results[i] = item
				resp.Version = res.Version
			}
		}
		writeJSON(w, resp)
	})

	type updateReq struct {
		Prefix  string `json:"prefix"`
		NextHop uint32 `json:"next_hop"`
	}
	type updateResp struct {
		Prefix   string  `json:"prefix"`
		TTFTrie  float64 `json:"ttf_trie_ns"`
		TTFTCAM  float64 `json:"ttf_tcam_ns"`
		TTFDRed  float64 `json:"ttf_dred_ns"`
		TTFTotal float64 `json:"ttf_total_ns"`
	}
	applyUpdate := func(w http.ResponseWriter, r *http.Request, apply func(ip.Prefix, ip.NextHop) (update.TTF, error), needHop bool) {
		var req updateReq
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		p, err := ip.ParsePrefix(req.Prefix)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if needHop && req.NextHop == 0 {
			httpError(w, http.StatusBadRequest, errors.New("next_hop must be a positive integer"))
			return
		}
		ttf, err := apply(p, ip.NextHop(req.NextHop))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, serve.ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, updateResp{
			Prefix: p.String(), TTFTrie: ttf.Trie, TTFTCAM: ttf.TCAM,
			TTFDRed: ttf.DRed, TTFTotal: ttf.Total(),
		})
	}
	rejectReplicaWrite := func(w http.ResponseWriter) bool {
		if fl == nil {
			return false
		}
		httpError(w, http.StatusForbidden, errors.New("replica is read-only: updates come from the collector feed"))
		return true
	}
	mux.HandleFunc("POST /announce", func(w http.ResponseWriter, r *http.Request) {
		if rejectReplicaWrite(w) {
			return
		}
		applyUpdate(w, r, rt.Announce, true)
	})
	mux.HandleFunc("POST /withdraw", func(w http.ResponseWriter, r *http.Request) {
		if rejectReplicaWrite(w) {
			return
		}
		applyUpdate(w, r, func(p ip.Prefix, _ ip.NextHop) (update.TTF, error) {
			return rt.Withdraw(p)
		}, false)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		if fl != nil {
			writeJSON(w, struct {
				serve.Stats
				Feed feed.FollowerStats `json:"feed"`
			}{rt.Stats(), fl.Stats()})
			return
		}
		writeJSON(w, rt.Stats())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		rt.Stats().WritePrometheus(w)
		if fl != nil {
			writeFeedPrometheus(w, fl.Stats())
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		states := rt.WorkerStates()
		healthy := 0
		for _, s := range states {
			if s == serve.WorkerHealthy {
				healthy++
			}
		}
		var fst feed.FollowerStats
		feedBehind := false
		if fl != nil {
			fst = fl.Stats()
			feedBehind = fst.State != "streaming"
		}
		switch {
		case healthy == 0:
			// Worker-path forwarding is down; only the snapshot path answers.
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "no healthy workers (snapshot path only)\n")
		case healthy == len(states) && !feedBehind:
			fmt.Fprintln(w, "ok")
		default:
			// Degraded but forwarding: the survivors own the whole table,
			// and a disconnected replica still answers from its last state.
			if healthy < len(states) {
				fmt.Fprintf(w, "degraded: %d/%d workers healthy\n", healthy, len(states))
			}
			if feedBehind {
				fmt.Fprintf(w, "degraded: feed %s (lag %d)\n", fst.State, fst.Lag)
			}
		}
		if fl != nil && !feedBehind {
			fmt.Fprintf(w, "feed: streaming at seq %d (lag %d)\n", fst.LastApplied, fst.Lag)
		}
	})

	type workerReq struct {
		Worker *int `json:"worker"`
	}
	workerStates := func() []map[string]any {
		states := rt.WorkerStates()
		out := make([]map[string]any, len(states))
		for i, s := range states {
			out[i] = map[string]any{"worker": i, "state": s.String()}
		}
		return out
	}
	adminWorker := func(action string, apply func(int) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req workerReq
			if err := json.NewDecoder(io.LimitReader(r.Body, 1<<12)).Decode(&req); err != nil {
				httpError(w, http.StatusBadRequest, err)
				return
			}
			if req.Worker == nil {
				httpError(w, http.StatusBadRequest, errors.New("worker must be set"))
				return
			}
			if err := apply(*req.Worker); err != nil {
				status := http.StatusInternalServerError
				switch {
				case errors.Is(err, serve.ErrUnknownWorker):
					status = http.StatusNotFound
				case errors.Is(err, serve.ErrWorkerState):
					// Double-fail, recover-when-healthy, failing the last
					// healthy worker: the request conflicts with the
					// worker's current state.
					status = http.StatusConflict
				case errors.Is(err, serve.ErrClosed):
					status = http.StatusServiceUnavailable
				}
				httpError(w, status, err)
				return
			}
			writeJSON(w, map[string]any{"action": action, "worker": *req.Worker, "workers": workerStates()})
		}
	}
	mux.HandleFunc("GET /debug/latency", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, rt.Stats().Latency)
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !traceCapture {
			httpError(w, http.StatusNotFound, errors.New("trace capture disabled (start with -debug-trace)"))
			return
		}
		sec := 5
		if q := r.URL.Query().Get("sec"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("sec must be a positive integer, got %q", q))
				return
			}
			sec = n
		}
		if sec > 60 {
			sec = 60
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.out"`)
		if err := trace.Start(w); err != nil {
			// A concurrent capture (here or via /debug/pprof/trace) holds
			// the tracer; headers are already sent, so just stop.
			return
		}
		select {
		case <-r.Context().Done():
		case <-time.After(time.Duration(sec) * time.Second):
		}
		trace.Stop()
	})

	mux.HandleFunc("POST /admin/worker/fail", adminWorker("fail", rt.FailWorker))
	mux.HandleFunc("POST /admin/worker/recover", adminWorker("recover", rt.RecoverWorker))
	mux.HandleFunc("GET /admin/worker", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, map[string]any{"workers": workerStates()})
	})
	mux.HandleFunc("POST /admin/rebalance", func(w http.ResponseWriter, _ *http.Request) {
		res, err := rt.Rebalance(true)
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, serve.ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			httpError(w, status, err)
			return
		}
		writeJSON(w, res)
	})
	return mux
}

// writeFeedPrometheus appends the replication feed's state to the
// /metrics exposition, mirroring serve.Stats.WritePrometheus's style.
func writeFeedPrometheus(w io.Writer, s feed.FollowerStats) {
	emit := func(name, typ, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	streaming := 0.0
	if s.State == "streaming" {
		streaming = 1
	}
	emit("clue_feed_streaming", "gauge", "1 while the replica is connected and applying the live stream.", streaming)
	emit("clue_feed_last_applied_seq", "gauge", "Last feed batch fully applied by this replica.", float64(s.LastApplied))
	emit("clue_feed_head_seq", "gauge", "Collector head sequence as of the last frame seen.", float64(s.Head))
	emit("clue_feed_lag_batches", "gauge", "Batches between the collector head and this replica.", float64(s.Lag))
	emit("clue_feed_reconnects_total", "counter", "Feed sessions opened after the first.", float64(s.Reconnects))
	emit("clue_feed_snapshot_loads_total", "counter", "Full snapshot bootstraps (first connect and re-syncs).", float64(s.SnapshotLoads))
	emit("clue_feed_resumes_total", "counter", "Reconnects resumed from the replay window without a snapshot.", float64(s.Resumes))
	emit("clue_feed_batches_total", "counter", "Update batches applied from the feed.", float64(s.Batches))
	emit("clue_feed_records_total", "counter", "Update records applied from the feed.", float64(s.Records))
	emit("clue_feed_hash_checks_total", "counter", "Canonical-table hash frames verified.", float64(s.HashChecks))
	emit("clue_feed_hash_mismatches_total", "counter", "Hash frames that did not match (each forces a re-sync).", float64(s.HashMismatches))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
