package main

import (
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "quick", "-only", "fig9"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 9") {
		t.Errorf("missing Figure 9 output:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Figure 8") {
		t.Error("-only fig9 also ran fig8")
	}
}

func TestRunBadScale(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "huge"}, &out); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnknownOnlyIsNoop(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "nothing-matches"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Errorf("unexpected output: %q", out.String())
	}
}
