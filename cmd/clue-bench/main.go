// Command clue-bench regenerates every table and figure of the paper's
// evaluation section and prints them in paper-style rows.
//
// Usage:
//
//	clue-bench [-scale quick|full] [-only fig8,fig9,ttf,table2,fig15,sweep]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"clue/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-bench", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "experiment scale: quick or full")
	only := fs.String("only", "", "comma-separated subset: fig8,fig9,ttf,table2,fig15,sweep,ablations,rebalance,extensions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	if selected("fig8") {
		start := time.Now()
		res, err := experiments.Fig8Compression(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
		fmt.Fprintf(out, "(fig8 took %s)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if selected("fig9") {
		res, err := experiments.Fig9Partition(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if selected("ttf") {
		res, err := experiments.RunTTF(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.RenderFig10())
		fmt.Fprintln(out, res.RenderFig11())
		fmt.Fprintln(out, res.RenderFig12())
		fmt.Fprintln(out, res.RenderFig13())
		fmt.Fprintln(out, res.RenderFig14())
	}
	if selected("table2") {
		res, _, err := experiments.Table2Workload(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if selected("fig15") {
		res, err := experiments.Fig15LoadBalance(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if selected("sweep") {
		res, err := experiments.DRedSweep(scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.RenderFig16())
		fmt.Fprintln(out, res.RenderFig17())
	}
	if selected("ablations") {
		dr, err := experiments.AblationDRedRule(scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, dr.Render())
		lay, err := experiments.AblationLayouts(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, lay.Render())
		pow, err := experiments.AblationPower(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, pow.Render())
		cp, err := experiments.AblationControlPlane(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, cp.Render())
	}
	if selected("rebalance") {
		res, err := experiments.RebalanceClosedLoop(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, res.Render())
	}
	if selected("extensions") {
		ns, err := experiments.NSweep(scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ns.Render())
		sh, err := experiments.SLPLShift(scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, sh.Render())
		ir, err := experiments.UpdateInterruption(scale, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ir.Render())
	}
	return nil
}
