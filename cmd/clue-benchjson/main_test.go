package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clue
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSnapshotLookup/indexed-4   100000000   24.05 ns/op   41584405 lookups/s   0 B/op   0 allocs/op
BenchmarkSnapshotLookup/binary-4    31559820    82.68 ns/op   12094699 lookups/s   0 B/op   0 allocs/op
BenchmarkServeDispatchParallel-4    1000000     1042 ns/op    959692 lookups/s     1.2 divert-%
some unrelated log line
PASS
ok   clue   6.178s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	// Sorted by name, CPU suffix stripped.
	if results[0].Name != "BenchmarkServeDispatchParallel" ||
		results[1].Name != "BenchmarkSnapshotLookup/binary" ||
		results[2].Name != "BenchmarkSnapshotLookup/indexed" {
		t.Fatalf("wrong order/names: %+v", results)
	}
	idx := results[2]
	if idx.Iterations != 100000000 {
		t.Fatalf("iterations = %d", idx.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 24.05, "lookups/s": 41584405, "B/op": 0, "allocs/op": 0,
	} {
		if got := idx.Metrics[unit]; got != want {
			t.Errorf("metrics[%q] = %v, want %v", unit, got, want)
		}
	}
	if got := results[0].Metrics["divert-%"]; got != 1.2 {
		t.Errorf("custom metric divert-%% = %v, want 1.2", got)
	}
}

func TestParseLineRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok   clue   6.178s",
		"Benchmark",                      // too few fields
		"BenchmarkX notanint 1 ns/op",    // bad iteration count
		"BenchmarkX 100 notafloat ns/op", // bad value
		"BenchmarkX 100",                 // no metrics at all
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
	r, ok := parseLine("BenchmarkSub/case-name-16 5 3.5 ns/op")
	if !ok || r.Name != "BenchmarkSub/case-name" {
		t.Errorf("suffix strip: %+v ok=%v", r, ok)
	}
	// A non-numeric trailing -part is kept (it is not a CPU suffix).
	r, ok = parseLine("BenchmarkOdd-name 5 3.5 ns/op")
	if !ok || r.Name != "BenchmarkOdd-name" {
		t.Errorf("non-numeric suffix: %+v ok=%v", r, ok)
	}
}

func TestRunWritesFileAndStdout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-o", path}, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc []result
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc) != 3 || doc[2].Metrics["ns/op"] != 24.05 {
		t.Fatalf("round-trip: %+v", doc)
	}

	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Error("stdout output differs from -o output")
	}

	if err := run(nil, strings.NewReader("no benchmarks here\n"), &buf); err == nil {
		t.Error("empty input accepted")
	}
}

// writeBaseline commits a baseline doc for the compare-mode tests.
func writeBaseline(t *testing.T, entries []result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareAgainstBaseline(t *testing.T) {
	baseline := writeBaseline(t, []result{
		{Name: "BenchmarkSnapshotLookup/indexed", Iterations: 1, Metrics: map[string]float64{"ns/op": 20, "lookups/s": 5e7}},
		{Name: "BenchmarkSnapshotLookup/binary", Iterations: 1, Metrics: map[string]float64{"ns/op": 80}},
		{Name: "BenchmarkServeDispatchParallel", Iterations: 1, Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkGone", Iterations: 1, Metrics: map[string]float64{"ns/op": 5}},
	})

	// Within budget: indexed 20 -> 24.05 is +20.25% but only the binary
	// case is matched here (82.68 vs 80 = +3.4%).
	var buf bytes.Buffer
	err := run([]string{"-baseline", baseline, "-match", "SnapshotLookup/binary"},
		strings.NewReader(sample), &buf)
	if err != nil {
		t.Fatalf("within-budget compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("no verdict printed:\n%s", buf.String())
	}

	// Over budget: indexed regresses 20 -> 24.05 ns/op (+20.25% > 20%).
	buf.Reset()
	err = run([]string{"-baseline", baseline, "-match", "SnapshotLookup", "-max-regress", "20"},
		strings.NewReader(sample), &buf)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("regression not detected: err=%v\n%s", err, buf.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkSnapshotLookup/indexed") {
		t.Fatalf("wrong benchmark blamed: %v", err)
	}

	// A looser budget passes the same input.
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-match", "SnapshotLookup", "-max-regress", "25"},
		strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("loose budget failed: %v\n%s", err, buf.String())
	}

	// Rate metrics regress downward: 5e7 -> 41584405 lookups/s is -16.8%.
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-match", "indexed", "-metric", "lookups/s", "-max-regress", "20"},
		strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("rate metric within budget failed: %v\n%s", err, buf.String())
	}
	buf.Reset()
	err = run([]string{"-baseline", baseline, "-match", "indexed", "-metric", "lookups/s", "-max-regress", "10"},
		strings.NewReader(sample), &buf)
	if err == nil {
		t.Fatalf("rate regression not detected:\n%s", buf.String())
	}

	// Benchmarks on only one side are reported, not failed.
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-match", "Benchmark", "-max-regress", "1000"},
		strings.NewReader(sample), &buf); err != nil {
		t.Fatalf("one-sided benchmarks failed the run: %v\n%s", err, buf.String())
	}
	for _, want := range []string{"BenchmarkGone", "baseline only"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q in report:\n%s", want, buf.String())
		}
	}

	// Nothing matched at all is an error, as is a bad regexp or a missing
	// or corrupt baseline file.
	if err := run([]string{"-baseline", baseline, "-match", "NoSuchBenchmark"},
		strings.NewReader(sample), &buf); err == nil {
		t.Error("empty match set accepted")
	}
	if err := run([]string{"-baseline", baseline, "-match", "(["},
		strings.NewReader(sample), &buf); err == nil {
		t.Error("bad regexp accepted")
	}
	if err := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(sample), &buf); err == nil {
		t.Error("missing baseline accepted")
	}
	corrupt := filepath.Join(t.TempDir(), "corrupt.json")
	os.WriteFile(corrupt, []byte("not json"), 0o644)
	if err := run([]string{"-baseline", corrupt}, strings.NewReader(sample), &buf); err == nil {
		t.Error("corrupt baseline accepted")
	}
}

// TestCompareZeroCostBaseline covers the exact-contract rule: a cost
// metric committed at zero (allocs/op for the batch read path) fails on
// any nonzero current value — there is no meaningful percentage budget
// over zero — while zero rate baselines stay informational skips.
func TestCompareZeroCostBaseline(t *testing.T) {
	baseline := writeBaseline(t, []result{
		{Name: "BenchmarkBatch", Iterations: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0, "lookups/s": 0}},
	})
	const clean = "BenchmarkBatch-4 1000 101 ns/op 0 allocs/op 50000000 lookups/s\n"
	const dirty = "BenchmarkBatch-4 1000 101 ns/op 2 allocs/op 50000000 lookups/s\n"

	var buf bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-metric", "ns/op,allocs/op", "-max-regress", "20"},
		strings.NewReader(clean), &buf); err != nil {
		t.Fatalf("zero allocs on both sides failed: %v\n%s", err, buf.String())
	}
	buf.Reset()
	err := run([]string{"-baseline", baseline, "-metric", "ns/op,allocs/op", "-max-regress", "20"},
		strings.NewReader(dirty), &buf)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("nonzero allocs vs zero baseline not detected: err=%v\n%s", err, buf.String())
	}
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-metric", "ns/op,lookups/s", "-max-regress", "20"},
		strings.NewReader(clean), &buf); err != nil {
		t.Fatalf("zero-rate baseline failed the run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "baseline lookups/s is zero") {
		t.Errorf("zero-rate skip not reported:\n%s", buf.String())
	}
}

// TestCompareCommittedBaseline guards the committed BENCH_serve.json: the
// CI regression step matches these names, so they must stay present and
// carry ns/op.
func TestCompareCommittedBaseline(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	var base []result
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	re := "SnapshotLookup|DispatchBatch"
	matched, p99s := 0, 0
	for _, r := range base {
		if strings.Contains(r.Name, "SnapshotLookup") || strings.Contains(r.Name, "DispatchBatch") {
			matched++
			if r.Metrics["ns/op"] <= 0 {
				t.Errorf("%s has no ns/op in committed baseline", r.Name)
			}
			if r.Metrics["p99-ns"] > 0 {
				p99s++
			}
		}
	}
	if matched == 0 {
		t.Fatalf("no committed benchmarks match CI regexp %q", re)
	}
	// The serve benchmarks report the runtime histogram tail; the CI p99
	// gate is vacuous if the committed baseline drops those fields.
	if p99s == 0 {
		t.Fatal("no matched benchmark carries p99-ns in the committed baseline")
	}
}

// TestCompareMultiMetric covers the comma-separated -metric form the CI
// p99 gate uses: every listed metric present on both sides is compared,
// metrics absent from either side are skipped without failing, and a
// list matching nothing anywhere is an error.
func TestCompareMultiMetric(t *testing.T) {
	const p99sample = `BenchmarkSnapshotLookup/indexed-4 1000 25 ns/op 300 p99-ns
BenchmarkServeDispatchBatchParallel-4 1000 900 ns/op
`
	baseline := writeBaseline(t, []result{
		{Name: "BenchmarkSnapshotLookup/indexed", Iterations: 1, Metrics: map[string]float64{"ns/op": 24, "p99-ns": 200}},
		{Name: "BenchmarkServeDispatchBatchParallel", Iterations: 1, Metrics: map[string]float64{"ns/op": 880}},
	})

	// Both metrics within a 60% budget; the batch benchmark has no p99-ns
	// on either side and must not fail the run.
	var buf bytes.Buffer
	if err := run([]string{"-baseline", baseline, "-metric", "ns/op,p99-ns", "-max-regress", "60"},
		strings.NewReader(p99sample), &buf); err != nil {
		t.Fatalf("multi-metric within budget failed: %v\n%s", err, buf.String())
	}

	// The p99 regression (200 -> 300, +50%) trips a 40% budget even though
	// ns/op is fine, and the error names the metric.
	buf.Reset()
	err := run([]string{"-baseline", baseline, "-metric", "ns/op,p99-ns", "-max-regress", "40"},
		strings.NewReader(p99sample), &buf)
	if err == nil || !strings.Contains(err.Error(), "p99-ns") {
		t.Fatalf("p99 regression not detected: err=%v\n%s", err, buf.String())
	}

	// A metric present in the baseline but absent from the current run is
	// skipped: comparing only p99-ns against the batch benchmark (which
	// never reports it) leaves nothing compared, which is an error.
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-match", "DispatchBatch", "-metric", "p99-ns"},
		strings.NewReader(p99sample), &buf); err == nil {
		t.Errorf("zero compared metrics accepted:\n%s", buf.String())
	}

	// Spaces after commas are tolerated.
	buf.Reset()
	if err := run([]string{"-baseline", baseline, "-metric", "ns/op, p99-ns", "-max-regress", "60"},
		strings.NewReader(p99sample), &buf); err != nil {
		t.Fatalf("spaced metric list failed: %v\n%s", err, buf.String())
	}
}
