package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clue
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSnapshotLookup/indexed-4   100000000   24.05 ns/op   41584405 lookups/s   0 B/op   0 allocs/op
BenchmarkSnapshotLookup/binary-4    31559820    82.68 ns/op   12094699 lookups/s   0 B/op   0 allocs/op
BenchmarkServeDispatchParallel-4    1000000     1042 ns/op    959692 lookups/s     1.2 divert-%
some unrelated log line
PASS
ok   clue   6.178s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	// Sorted by name, CPU suffix stripped.
	if results[0].Name != "BenchmarkServeDispatchParallel" ||
		results[1].Name != "BenchmarkSnapshotLookup/binary" ||
		results[2].Name != "BenchmarkSnapshotLookup/indexed" {
		t.Fatalf("wrong order/names: %+v", results)
	}
	idx := results[2]
	if idx.Iterations != 100000000 {
		t.Fatalf("iterations = %d", idx.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 24.05, "lookups/s": 41584405, "B/op": 0, "allocs/op": 0,
	} {
		if got := idx.Metrics[unit]; got != want {
			t.Errorf("metrics[%q] = %v, want %v", unit, got, want)
		}
	}
	if got := results[0].Metrics["divert-%"]; got != 1.2 {
		t.Errorf("custom metric divert-%% = %v, want 1.2", got)
	}
}

func TestParseLineRejectsJunk(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok   clue   6.178s",
		"Benchmark",                      // too few fields
		"BenchmarkX notanint 1 ns/op",    // bad iteration count
		"BenchmarkX 100 notafloat ns/op", // bad value
		"BenchmarkX 100",                 // no metrics at all
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
	r, ok := parseLine("BenchmarkSub/case-name-16 5 3.5 ns/op")
	if !ok || r.Name != "BenchmarkSub/case-name" {
		t.Errorf("suffix strip: %+v ok=%v", r, ok)
	}
	// A non-numeric trailing -part is kept (it is not a CPU suffix).
	r, ok = parseLine("BenchmarkOdd-name 5 3.5 ns/op")
	if !ok || r.Name != "BenchmarkOdd-name" {
		t.Errorf("non-numeric suffix: %+v ok=%v", r, ok)
	}
}

func TestRunWritesFileAndStdout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := run([]string{"-o", path}, strings.NewReader(sample), nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc []result
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc) != 3 || doc[2].Metrics["ns/op"] != 24.05 {
		t.Fatalf("round-trip: %+v", doc)
	}

	var buf bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Error("stdout output differs from -o output")
	}

	if err := run(nil, strings.NewReader("no benchmarks here\n"), &buf); err == nil {
		t.Error("empty input accepted")
	}
}
