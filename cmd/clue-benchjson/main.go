// Command clue-benchjson converts `go test -bench` text output into a
// stable JSON document, so CI can commit benchmark baselines (such as
// BENCH_serve.json) and diff them across revisions.
//
// Usage:
//
//	go test -bench Serve -benchmem . | clue-benchjson [-o BENCH_serve.json]
//
// Each benchmark line becomes one entry keyed by the benchmark name with
// the -N CPU suffix stripped; every "<value> <unit>" pair on the line
// (ns/op, B/op, allocs/op, and custom b.ReportMetric units such as
// lookups/s) lands in that entry's metrics map. Non-benchmark lines are
// passed through untouched, so the command can sit at the end of a pipe
// without hiding test output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("clue-benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, doc, 0o644)
	}
	_, err = out.Write(doc)
	return err
}

// parse reads go-test bench output and returns the sorted results. A
// benchmark repeated in the input (e.g. -count=2) keeps its last line.
func parse(in io.Reader) ([]result, error) {
	byName := map[string]result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			byName[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := make([]result, 0, len(byName))
	for _, r := range byName {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// parseLine decodes one "BenchmarkX-8  N  v1 u1  v2 u2 ..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: stripCPUSuffix(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// stripCPUSuffix removes go test's trailing -GOMAXPROCS marker so names
// are stable across machines ("BenchmarkX/sub-8" -> "BenchmarkX/sub").
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
