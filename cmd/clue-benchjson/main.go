// Command clue-benchjson converts `go test -bench` text output into a
// stable JSON document, so CI can commit benchmark baselines (such as
// BENCH_serve.json) and diff them across revisions.
//
// Usage:
//
//	go test -bench Serve -benchmem . | clue-benchjson [-o BENCH_serve.json]
//	go test -bench Serve -benchmem . | clue-benchjson -baseline BENCH_serve.json \
//	    -match 'SnapshotLookup|DispatchBatch' -max-regress 20
//
// Each benchmark line becomes one entry keyed by the benchmark name with
// the -N CPU suffix stripped; every "<value> <unit>" pair on the line
// (ns/op, B/op, allocs/op, and custom b.ReportMetric units such as
// lookups/s) lands in that entry's metrics map. Non-benchmark lines are
// passed through untouched, so the command can sit at the end of a pipe
// without hiding test output.
//
// With -baseline the parsed results are additionally compared against a
// previously committed JSON document: for every benchmark whose name
// matches -match, each comma-separated -metric value (default ns/op) is
// diffed against the baseline and the command exits non-zero when any
// regression exceeds -max-regress percent. Rate metrics (units ending
// in "/s") regress downward; cost metrics (/op) and latency metrics
// (-ns, such as the p99-ns percentile a benchmark reports) regress
// upward. A metric absent from a benchmark on either side is skipped —
// only some benchmarks report percentiles, and that must not fail the
// gate for the rest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("clue-benchjson", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	baseline := fs.String("baseline", "", "committed baseline JSON to compare against")
	match := fs.String("match", ".*", "regexp selecting benchmark names to compare")
	metric := fs.String("metric", "ns/op", "comma-separated metrics compared against the baseline")
	maxRegress := fs.Float64("max-regress", 20, "fail when the compared metric regresses by more than this percent")
	if err := fs.Parse(args); err != nil {
		return err
	}

	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	doc, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, doc, 0o644); err != nil {
			return err
		}
	} else if *baseline == "" {
		if _, err := out.Write(doc); err != nil {
			return err
		}
	}
	if *baseline == "" {
		return nil
	}
	return compare(results, *baseline, *match, *metric, *maxRegress, out)
}

// compare diffs the matched benchmarks' metrics against the baseline
// file and errors when any regression exceeds maxRegress percent.
// metrics is a comma-separated list; a metric one side does not report
// for a benchmark is skipped for that benchmark only. A benchmark
// present on only one side is reported but is not a failure — CI should
// regenerate the baseline when the benchmark set changes.
func compare(results []result, baselinePath, match, metrics string, maxRegress float64, out io.Writer) error {
	re, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("bad -match: %w", err)
	}
	metricList := strings.Split(metrics, ",")
	for i, m := range metricList {
		metricList[i] = strings.TrimSpace(m)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base []result
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseByName := make(map[string]result, len(base))
	for _, r := range base {
		baseByName[r.Name] = r
	}

	compared := 0
	var regressions []string
	for _, cur := range results {
		if !re.MatchString(cur.Name) {
			continue
		}
		b, ok := baseByName[cur.Name]
		if !ok {
			fmt.Fprintf(out, "%-50s %12s (not in baseline)\n", cur.Name, "-")
			continue
		}
		for _, metric := range metricList {
			if metric == "" {
				continue
			}
			bv, bok := b.Metrics[metric]
			cv, cok := cur.Metrics[metric]
			if !bok || !cok {
				// Not every benchmark reports every metric (percentiles
				// come from b.ReportMetric in a few of them only).
				continue
			}
			if bv == 0 {
				if strings.HasSuffix(metric, "/s") {
					// A zero rate baseline is degenerate; nothing to gate.
					fmt.Fprintf(out, "%-50s %12s (baseline %s is zero)\n", cur.Name, "-", metric)
					continue
				}
				// A zero cost baseline (allocs/op=0, B/op=0) is an exact
				// contract, not a ratio: "20% worse than zero allocations"
				// is meaningless, so any nonzero current value fails.
				compared++
				verdict := "ok"
				if cv != 0 {
					verdict = "REGRESSION"
					regressions = append(regressions,
						fmt.Sprintf("%s: %s 0 -> %.4g (zero-cost baseline admits no regression)", cur.Name, metric, cv))
				}
				fmt.Fprintf(out, "%-50s %s %12.4g -> %-12.4g %6s  %s\n", cur.Name, metric, bv, cv, "", verdict)
				continue
			}
			compared++
			// Rate metrics (lookups/s, updates/s) regress downward; cost
			// and latency metrics (ns/op, B/op, p99-ns) regress upward.
			regress := (cv - bv) / bv * 100
			if strings.HasSuffix(metric, "/s") {
				regress = -regress
			}
			verdict := "ok"
			if regress > maxRegress {
				verdict = "REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, limit %.1f%%)", cur.Name, metric, bv, cv, regress, maxRegress))
			}
			fmt.Fprintf(out, "%-50s %s %12.4g -> %-12.4g %+6.1f%% %s\n", cur.Name, metric, bv, cv, regress, verdict)
		}
	}
	for _, b := range base {
		if re.MatchString(b.Name) {
			if _, ok := resultsHave(results, b.Name); !ok {
				fmt.Fprintf(out, "%-50s %12s (baseline only — not run)\n", b.Name, "-")
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched %q in both the input and %s", match, baselinePath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression vs %s:\n  %s", baselinePath, strings.Join(regressions, "\n  "))
	}
	return nil
}

// resultsHave reports whether name appears in the parsed results.
func resultsHave(results []result, name string) (result, bool) {
	for _, r := range results {
		if r.Name == name {
			return r, true
		}
	}
	return result{}, false
}

// parse reads go-test bench output and returns the sorted results. A
// benchmark repeated in the input (e.g. -count=2) keeps its last line.
func parse(in io.Reader) ([]result, error) {
	byName := map[string]result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		r, ok := parseLine(sc.Text())
		if ok {
			byName[r.Name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	results := make([]result, 0, len(byName))
	for _, r := range byName {
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	return results, nil
}

// parseLine decodes one "BenchmarkX-8  N  v1 u1  v2 u2 ..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: stripCPUSuffix(fields[0]), Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, len(r.Metrics) > 0
}

// stripCPUSuffix removes go test's trailing -GOMAXPROCS marker so names
// are stable across machines ("BenchmarkX/sub-8" -> "BenchmarkX/sub").
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
