// Command clue-collector runs the replication feed's source side: it
// owns the authoritative route table, tails an update trace and streams
// batched updates to follower replicas (clue-serve -follow) over the
// length-prefixed binary feed protocol, with a bounded replay window
// for reconnect-and-resume and periodic canonical-table hash frames for
// convergence verification.
//
// Usage:
//
//	clue-collector [-addr 127.0.0.1:9090]
//	               [-fib table.rib | -routes 20000] [-seed 42]
//	               [-trace updates.txt | -updates 10000]
//	               [-batch 8] [-interval 1ms] [-window 64] [-hash-every 16]
//	               [-wait-followers 0] [-linger] [-v]
//
// The base table comes from -fib (a ribio route file) or is generated
// synthetically from -seed/-routes. The update stream comes from -trace
// (a ribio update-trace file, e.g. from clue-trace -updates-out) or is
// generated from the same seed. -wait-followers N blocks streaming
// until N followers are connected; -linger keeps serving (and
// replaying nothing) after the trace ends until SIGINT/SIGTERM, so
// late followers can still bootstrap from the final table.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/ribio"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "clue-collector:", err)
		os.Exit(1)
	}
}

// run builds the collector and streams the trace until done or ctx is
// cancelled. ready (optional) receives the bound listener address.
func run(ctx context.Context, args []string, out, errw io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("clue-collector", flag.ContinueOnError)
	fs.SetOutput(errw)
	addr := fs.String("addr", "127.0.0.1:9090", "listen address for followers")
	fibPath := fs.String("fib", "", "load the base table from a ribio route file")
	nRoutes := fs.Int("routes", 20000, "synthetic base table size (when -fib unset)")
	seed := fs.Int64("seed", 42, "seed for the synthetic table and generated updates")
	tracePath := fs.String("trace", "", "replay updates from a ribio update-trace file")
	nUpdates := fs.Int("updates", 10000, "generated update count (when -trace unset)")
	batch := fs.Int("batch", 8, "updates per replicated batch")
	interval := fs.Duration("interval", time.Millisecond, "pause between batches (0 = full speed)")
	window := fs.Int("window", 64, "replay window in batches")
	hashEvery := fs.Int("hash-every", 16, "canonical-table hash frame cadence in batches")
	waitFollowers := fs.Int("wait-followers", 0, "wait for this many followers before streaming")
	linger := fs.Bool("linger", false, "keep serving after the trace ends until interrupted")
	verbose := fs.Bool("v", false, "log per-follower protocol events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *batch < 1 {
		return errors.New("-batch must be >= 1")
	}

	routes, origin, err := loadBase(*fibPath, *nRoutes, *seed)
	if err != nil {
		return err
	}
	recs, traceOrigin, err := loadTrace(*tracePath, routes, *nUpdates, *seed)
	if err != nil {
		return err
	}

	cfg := feed.CollectorConfig{BaseRoutes: routes, Window: *window, HashEvery: *hashEvery}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { fmt.Fprintf(errw, format+"\n", args...) }
	}
	coll, err := feed.NewCollector(cfg)
	if err != nil {
		return err
	}
	defer coll.Close()
	bound, err := coll.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "clue-collector: %s, %s — %d batches of <= %d, window %d, listening on %s\n",
		origin, traceOrigin, (len(recs)+*batch-1)/ *batch, *batch, *window, bound)
	if ready != nil {
		ready(bound)
	}

	if *waitFollowers > 0 {
		fmt.Fprintf(out, "clue-collector: waiting for %d followers\n", *waitFollowers)
		for coll.Stats().Followers < *waitFollowers {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(10 * time.Millisecond):
			}
		}
	}

	var last uint64
	for i := 0; i < len(recs); i += *batch {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(out, "clue-collector: interrupted")
			return nil
		}
		end := min(i+*batch, len(recs))
		seq, err := coll.Apply(recs[i:end])
		if err != nil {
			return err
		}
		last = seq
		if *interval > 0 && end < len(recs) {
			select {
			case <-ctx.Done():
			case <-time.After(*interval):
			}
		}
	}

	if n := coll.Stats().Followers; n > 0 && last > 0 {
		if err := coll.WaitAcked(n, last, 30*time.Second); err != nil {
			fmt.Fprintf(out, "clue-collector: %v\n", err)
		}
	}
	st := coll.Stats()
	fmt.Fprintf(out, "clue-collector: streamed %d batches (%d records) to head %d — %d followers, %d snapshots, %d resumes\n",
		st.Batches, st.Records, st.Head, st.Followers, st.Snapshots, st.Resumes)

	if *linger {
		fmt.Fprintln(out, "clue-collector: lingering (interrupt to exit)")
		<-ctx.Done()
		fmt.Fprintln(out, "clue-collector: shutting down")
	}
	return nil
}

// loadBase resolves the base-table source: ribio file, else synthetic.
func loadBase(fibPath string, nRoutes int, seed int64) ([]ip.Route, string, error) {
	if fibPath != "" {
		f, err := os.Open(fibPath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		routes, err := ribio.Read(f)
		if err != nil {
			return nil, "", err
		}
		return routes, fmt.Sprintf("fib %s (%d routes)", fibPath, len(routes)), nil
	}
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: nRoutes})
	if err != nil {
		return nil, "", err
	}
	return fib.Routes(), fmt.Sprintf("synthetic FIB (%d routes, seed %d)", nRoutes, seed), nil
}

// loadTrace resolves the update stream: ribio update-trace file, else
// generated over the base table with the same seed.
func loadTrace(tracePath string, base []ip.Route, nUpdates int, seed int64) ([]ribio.UpdateRecord, string, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		recs, err := ribio.ReadUpdates(f)
		if err != nil {
			return nil, "", err
		}
		return recs, fmt.Sprintf("trace %s (%d updates)", tracePath, len(recs)), nil
	}
	g, err := tracegen.NewUpdateGen(trie.FromRoutes(base), tracegen.UpdateConfig{Seed: seed, Messages: nUpdates})
	if err != nil {
		return nil, "", err
	}
	return tracegen.Records(g.NextN(nUpdates)), fmt.Sprintf("generated trace (%d updates, seed %d)", nUpdates, seed), nil
}
