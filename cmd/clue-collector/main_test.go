package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clue/internal/feed"
	"clue/internal/fibgen"
	"clue/internal/ip"
	"clue/internal/onrtc"
	"clue/internal/ribio"
	"clue/internal/tracegen"
	"clue/internal/trie"
)

// mirrorApplier is a minimal feed.Applier over a plain trie, with the
// canonical view the hash frames are computed against.
type mirrorApplier struct {
	mu  sync.Mutex
	fib *trie.Trie
}

func (a *mirrorApplier) Reset(routes []ip.Route) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fib = trie.FromRoutes(routes)
	return nil
}

func (a *mirrorApplier) Announce(p ip.Prefix, hop ip.NextHop) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fib.Insert(p, hop, nil)
	return nil
}

func (a *mirrorApplier) Withdraw(p ip.Prefix) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.fib.Delete(p, nil)
	return nil
}

func (a *mirrorApplier) CanonicalRoutes() []ip.Route {
	a.mu.Lock()
	defer a.mu.Unlock()
	return onrtc.Compress(a.fib).Routes()
}

// startRun launches run() against an ephemeral port and returns the
// bound address plus a done channel with the final error.
func startRun(t *testing.T, ctx context.Context, args []string, out, errw *bytes.Buffer) (net.Addr, <-chan error) {
	t.Helper()
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, args, out, errw, func(a net.Addr) { ready <- a })
	}()
	select {
	case a := <-ready:
		return a, done
	case err := <-done:
		t.Fatalf("run exited before listening: %v\nstderr: %s", err, errw.String())
	case <-time.After(10 * time.Second):
		t.Fatal("collector never reported ready")
	}
	return nil, nil
}

func dialFollower(t *testing.T, addr net.Addr) (*feed.Follower, *mirrorApplier) {
	t.Helper()
	app := &mirrorApplier{}
	fl, err := feed.NewFollower(feed.FollowerConfig{
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr.String(), time.Second)
		},
		Applier: app,
	})
	if err != nil {
		t.Fatalf("follower: %v", err)
	}
	t.Cleanup(func() { fl.Close() })
	return fl, app
}

func TestRunStreamsGeneratedTrace(t *testing.T) {
	var out, errw bytes.Buffer
	addr, done := startRun(t, context.Background(), []string{
		"-addr", "127.0.0.1:0", "-routes", "400", "-seed", "11",
		"-updates", "120", "-batch", "6", "-interval", "0",
		"-wait-followers", "1", "-v",
	}, &out, &errw)

	fl, app := dialFollower(t, addr)
	if err := <-done; err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	st := fl.Stats()
	if st.LastApplied != 20 { // 120 updates / batch 6
		t.Fatalf("follower applied to %d, want 20\nstderr: %s", st.LastApplied, errw.String())
	}
	if st.HashMismatches != 0 {
		t.Fatalf("hash mismatches: %d", st.HashMismatches)
	}
	if st.HashChecks == 0 {
		t.Fatal("no hash frames verified")
	}
	if len(app.CanonicalRoutes()) == 0 {
		t.Fatal("follower table empty after stream")
	}
	if !strings.Contains(out.String(), "streamed 20 batches") {
		t.Fatalf("unexpected summary: %q", out.String())
	}
}

func TestRunReplaysTraceFileOverFIBFile(t *testing.T) {
	dir := t.TempDir()
	fib, err := fibgen.Generate(fibgen.Config{Seed: 3, Routes: 300})
	if err != nil {
		t.Fatal(err)
	}
	fibPath := filepath.Join(dir, "table.rib")
	var fw bytes.Buffer
	if err := ribio.Write(&fw, fib.Routes()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fibPath, fw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "updates.txt")
	var tw bytes.Buffer
	if _, err := tracegen.GenerateUpdateTrace(&tw, fib, tracegen.UpdateConfig{Seed: 3, Messages: 40}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, tw.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errw bytes.Buffer
	addr, done := startRun(t, context.Background(), []string{
		"-addr", "127.0.0.1:0", "-fib", fibPath, "-trace", tracePath,
		"-batch", "5", "-interval", "0", "-wait-followers", "1",
	}, &out, &errw)
	fl, _ := dialFollower(t, addr)
	if err := <-done; err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	if st := fl.Stats(); st.LastApplied != 8 { // 40 updates / batch 5
		t.Fatalf("follower applied to %d, want 8", st.LastApplied)
	}
	if !strings.Contains(out.String(), "trace "+tracePath) || !strings.Contains(out.String(), "fib "+fibPath) {
		t.Fatalf("summary does not name the input files: %q", out.String())
	}
}

func TestRunLingerStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errw bytes.Buffer
	addr, done := startRun(t, ctx, []string{
		"-addr", "127.0.0.1:0", "-routes", "200", "-updates", "10",
		"-batch", "5", "-interval", "0", "-linger",
	}, &out, &errw)

	// A follower connecting after the stream ended must still bootstrap
	// from the final table.
	fl, app := dialFollower(t, addr)
	if err := fl.WaitSeq(2, 10*time.Second); err != nil {
		t.Fatalf("late follower never caught up: %v", err)
	}
	if len(app.CanonicalRoutes()) == 0 {
		t.Fatal("late follower table empty")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("linger did not stop on cancel")
	}
	if !strings.Contains(out.String(), "lingering") {
		t.Fatalf("missing linger notice: %q", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := [][]string{
		{"-batch", "0"},
		{"-updates", "not-a-number"},
		{"-fib", "/nonexistent/table.rib"},
		{"-trace", "/nonexistent/updates.txt"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if err := run(context.Background(), args, &out, &errw, nil); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
