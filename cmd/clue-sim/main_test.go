package main

import (
	"strings"
	"testing"
)

func TestRunCLUE(t *testing.T) {
	var out strings.Builder
	args := []string{"-routes", "4000", "-packets", "30000", "-warmup", "10000"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"mechanism:", "speedup factor:", "dred hit rate:", "per-TCAM load"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "control plane:  0 interactions") {
		t.Errorf("CLUE run should report zero control-plane interactions:\n%s", s)
	}
}

func TestRunCLUEWorstCase(t *testing.T) {
	var out strings.Builder
	args := []string{"-routes", "4000", "-packets", "30000", "-warmup", "10000", "-worst"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "tcam 1:") {
		t.Errorf("missing per-TCAM rows:\n%s", out.String())
	}
}

func TestRunCLPL(t *testing.T) {
	var out strings.Builder
	args := []string{"-routes", "4000", "-packets", "30000", "-warmup", "10000", "-mech", "clpl"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "control plane:  0 interactions") {
		t.Errorf("CLPL run should use the control plane:\n%s", out.String())
	}
}

func TestRunBadMechanism(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mech", "magic"}, &out); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag accepted")
	}
}
