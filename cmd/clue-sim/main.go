// Command clue-sim runs the parallel lookup simulation with tunable
// parameters and prints throughput, speedup factor, DRed hit rate and the
// per-TCAM load distribution.
//
// Usage:
//
//	clue-sim [-routes 50000] [-tcams 4] [-buckets 32] [-packets 1000000]
//	         [-dred 1024] [-queue 256] [-clocks 4] [-worst] [-mech clue|clpl]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"clue/internal/engine"
	"clue/internal/fibgen"
	"clue/internal/onrtc"
	"clue/internal/tracegen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clue-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("clue-sim", flag.ContinueOnError)
	nRoutes := fs.Int("routes", 50000, "synthetic FIB size")
	seed := fs.Int64("seed", 42, "generator seed")
	tcams := fs.Int("tcams", 4, "TCAM chip count")
	buckets := fs.Int("buckets", 32, "range partition count (CLUE)")
	packets := fs.Int("packets", 1000000, "measured packets")
	warm := fs.Int("warmup", 100000, "cache warm-up packets")
	dredSize := fs.Int("dred", 1024, "per-TCAM DRed size")
	queue := fs.Int("queue", 256, "per-TCAM FIFO depth")
	clocks := fs.Int("clocks", 4, "clocks per TCAM lookup")
	worst := fs.Bool("worst", false, "use the worst-case (hottest-together) bucket mapping")
	mech := fs.String("mech", "clue", "mechanism: clue or clpl")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fib, err := fibgen.Generate(fibgen.Config{Seed: *seed, Routes: *nRoutes})
	if err != nil {
		return err
	}
	table := onrtc.Compress(fib)
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(table.Routes()),
		tracegen.TrafficConfig{Seed: *seed},
	)
	if err != nil {
		return err
	}

	var sys engine.System
	switch *mech {
	case "clue":
		var mapping []int
		if *worst {
			mapping, err = worstMapping(table, *buckets, *tcams, *seed)
			if err != nil {
				return err
			}
		}
		sys, err = engine.NewCLUESystem(table, *tcams, *buckets, mapping)
	case "clpl":
		sys, err = engine.NewCLPLSystem(fib, *tcams, (*buckets+*tcams-1)/(*tcams), nil)
	default:
		err = fmt.Errorf("unknown mechanism %q", *mech)
	}
	if err != nil {
		return err
	}

	eng, err := engine.New(sys, engine.Config{
		QueueDepth:   *queue,
		DRedSize:     *dredSize,
		LookupClocks: *clocks,
	})
	if err != nil {
		return err
	}
	eng.Run(traffic.Next, *warm)
	eng.ResetStats()
	for i := 0; i < *packets; i++ {
		eng.Step(traffic.Next(), true)
	}
	st := eng.Stats()

	fmt.Fprintf(out, "mechanism:      %s (%d TCAMs, table %d -> %d entries)\n",
		sys.Name(), sys.N(), fib.Len(), table.Len())
	fmt.Fprintf(out, "throughput:     %.4f packets/clock\n", st.Throughput())
	fmt.Fprintf(out, "speedup factor: %.3f (bound (N-1)h+1 = %.3f)\n",
		st.SpeedupFactor(*clocks), float64(sys.N()-1)*st.HitRate()+1)
	fmt.Fprintf(out, "dred hit rate:  %.4f (%d lookups)\n", st.HitRate(), st.DRedLookups)
	fmt.Fprintf(out, "diverted:       %d   requeued: %d   dropped: %d\n",
		st.Diverted, st.Requeued, st.Dropped)
	fmt.Fprintf(out, "control plane:  %d interactions, %d SRAM visits\n", st.ControlPlane, st.SRAMVisits)
	fmt.Fprintln(out, "per-TCAM load (home -> served):")
	var homeSum, servedSum int64
	for i := 0; i < sys.N(); i++ {
		homeSum += st.PerTCAMHome[i]
		servedSum += st.PerTCAMServed[i]
	}
	for i := 0; i < sys.N(); i++ {
		fmt.Fprintf(out, "  tcam %d: %6.2f%% -> %6.2f%%\n", i+1,
			100*float64(st.PerTCAMHome[i])/float64(max64(homeSum, 1)),
			100*float64(st.PerTCAMServed[i])/float64(max64(servedSum, 1)))
	}
	return nil
}

// worstMapping measures per-bucket load offline and groups the hottest
// buckets onto TCAM 0, reproducing Table II's construction.
func worstMapping(table *onrtc.Table, buckets, tcams int, seed int64) ([]int, error) {
	_, index, err := engine.BucketIndex(table, buckets)
	if err != nil {
		return nil, err
	}
	traffic, err := tracegen.NewTraffic(
		tracegen.PrefixesFromRoutes(table.Routes()),
		tracegen.TrafficConfig{Seed: seed},
	)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, buckets)
	for i := 0; i < 200000; i++ {
		counts[index.Lookup(traffic.Next())]++
	}
	order := make([]int, buckets)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return counts[order[a]] > counts[order[b]] })
	mapping := make([]int, buckets)
	per := (buckets + tcams - 1) / tcams
	for rank, b := range order {
		t := rank / per
		if t >= tcams {
			t = tcams - 1
		}
		mapping[b] = t
	}
	return mapping, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
