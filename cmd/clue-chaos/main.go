// Command clue-chaos runs the deterministic fault-injection soak from
// internal/chaos against a live serve.Runtime: a seeded update storm
// with concurrent lookup traffic while workers are failed, poisoned,
// stalled and recovered on schedule, checkpointed against a fresh
// oracle rebuild.
//
// Usage:
//
//	clue-chaos [-seed 7] [-ops 10000] [-routes 12000] [-workers 4]
//	           [-cycles 3] [-max-dispatch-p99 1s] [-sequential] [-v]
//	clue-chaos -feed [-seed 7] [-ops 1200] [-routes 3000] [-workers 2]
//	           [-feed-batch 4] [-feed-window 16] [-v]
//
// The report is printed as JSON on stdout; the exit status is non-zero
// when any invariant broke (wrong answer vs the oracle, a dispatch that
// exhausted its retry/timeout budget, a degraded-mode dispatch p99 above
// -max-dispatch-p99 — negative disables the bound — a TTF replay
// mismatch in -sequential mode, or a goroutine leak).
//
// -feed switches to the replication chaos scenario instead: a collector
// streams a seeded update trace to two runtime-backed follower replicas
// while links are cut (briefly and beyond the replay window), a
// replica's apply pipeline is stalled and the collector is restarted
// mid-stream with a state handoff. The run fails unless both replicas
// reconverge to the collector's canonical compressed table with the
// resume and re-snapshot paths both exercised and no goroutine leaks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"clue/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "clue-chaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("clue-chaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	seed := fs.Int64("seed", 7, "seed for FIB, trace, fault schedule and probes")
	ops := fs.Int("ops", 10000, "update-storm length")
	routes := fs.Int("routes", 12000, "base FIB size")
	workers := fs.Int("workers", 4, "partition worker count")
	cycles := fs.Int("cycles", 3, "worker kill/recover cycles")
	checkpoints := fs.Int("checkpoints", 10, "oracle checkpoints over the storm")
	probes := fs.Int("probes", 2000, "random probes per checkpoint")
	lookers := fs.Int("lookers", 4, "concurrent lookup goroutines")
	maxP99 := fs.Duration("max-dispatch-p99", 0, "fail when the soak's dispatch p99 exceeds this (0 = 1s default, negative disables)")
	sequential := fs.Bool("sequential", false, "apply ops one at a time and verify TTF replay equivalence")
	feedMode := fs.Bool("feed", false, "run the replication chaos scenario (collector + two follower replicas)")
	feedBatch := fs.Int("feed-batch", 0, "updates per replicated batch (feed mode; 0 = default)")
	feedWindow := fs.Int("feed-window", 0, "collector replay window in batches (feed mode; 0 = default)")
	verbose := fs.Bool("v", false, "log faults and checkpoints to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *feedMode {
		fcfg := chaos.FeedConfig{
			Seed:      *seed,
			Routes:    *routes,
			Updates:   *ops,
			BatchSize: *feedBatch,
			Window:    *feedWindow,
			Workers:   *workers,
		}
		// The shared -ops/-routes defaults are sized for the soak; scale
		// them down unless the caller overrode them.
		if *ops == 10000 {
			fcfg.Updates = 0
		}
		if *routes == 12000 {
			fcfg.Routes = 0
		}
		if *workers == 4 {
			fcfg.Workers = 0
		}
		if *verbose {
			fcfg.Log = errw
		}
		rep, err := chaos.RunFeed(fcfg)
		doc, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Fprintln(out, string(doc))
		return err
	}

	cfg := chaos.Config{
		Seed:                *seed,
		Ops:                 *ops,
		Routes:              *routes,
		Workers:             *workers,
		Cycles:              *cycles,
		Checkpoints:         *checkpoints,
		ProbesPerCheckpoint: *probes,
		Lookers:             *lookers,
		MaxDispatchP99:      *maxP99,
		Sequential:          *sequential,
	}
	if *verbose {
		cfg.Log = errw
	}
	rep, err := chaos.Run(cfg)
	doc, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		return jerr
	}
	fmt.Fprintln(out, string(doc))
	return err
}
