// Command clue-chaos runs the deterministic fault-injection soak from
// internal/chaos against a live serve.Runtime: a seeded update storm
// with concurrent lookup traffic while workers are failed, poisoned,
// stalled and recovered on schedule, checkpointed against a fresh
// oracle rebuild.
//
// Usage:
//
//	clue-chaos [-seed 7] [-ops 10000] [-routes 12000] [-workers 4]
//	           [-cycles 3] [-max-dispatch-p99 1s] [-sequential] [-v]
//	clue-chaos -feed [-seed 7] [-ops 1200] [-routes 3000] [-workers 2]
//	           [-feed-batch 4] [-feed-window 16] [-v]
//	clue-chaos -scenario session-reset|route-leak|update-burst|flash-crowd
//	           [-seed 7] [-routes 12000] [-workers 4] [-mutant none]
//	           [-max-dispatch-p99 0] [-max-divert-rate 0] [-max-converge 0]
//	           [-repro-dir DIR] [-v]
//	clue-chaos -compare-rebalance [-seed 7] [-routes 4000] [-workers 4]
//	           [-lookers 120] [-min-improvement 0.2] [-v]
//
// The report is printed as JSON on stdout; the exit status is non-zero
// when any invariant broke (wrong answer vs the oracle, a dispatch that
// exhausted its retry/timeout budget, a degraded-mode dispatch p99 above
// -max-dispatch-p99 — negative disables the bound — a TTF replay
// mismatch in -sequential mode, or a goroutine leak).
//
// -feed switches to the replication chaos scenario instead: a collector
// streams a seeded update trace to two runtime-backed follower replicas
// while links are cut (briefly and beyond the replay window), a
// replica's apply pipeline is stalled and the collector is restarted
// mid-stream with a state handoff. The run fails unless both replicas
// reconverge to the collector's canonical compressed table with the
// resume and re-snapshot paths both exercised and no goroutine leaks.
//
// -scenario replays one of the adversarial scenario-lab programs
// (internal/tracegen) under traffic with mid-storm oracle checkpoints
// and the scenario's declared contract: bounded degraded-mode dispatch
// p99, bounded divert rate and bounded time-to-converge (first
// canonical-table-hash match after the storm). The bound flags override
// the contract; 0 keeps the scenario default and a negative value
// disables that bound. -repro-dir writes a shrunk JSON reproducer on
// failure; -mutant plants a deliberate oracle defect (self-test).
//
// -compare-rebalance replays the flash-crowd scenario twice under
// service-paced pressure traffic — repartitioning off, then on — and
// fails unless the controller recut and improved the steady-state
// divert rate by -min-improvement, with the off leg required to show
// real divert pressure so the contract cannot pass vacuously.
//
// Exit status: 0 on a passing run, 1 when the run failed an invariant
// or its contract, 2 on a usage error (unknown flag or scenario,
// contradictory bounds, incompatible mode combinations).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"clue/internal/chaos"
	"clue/internal/oracle"
	"clue/internal/tracegen"
)

// usageError marks errors that indicate the invocation itself is wrong
// (exit 2), as opposed to a run that failed (exit 1).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "clue-chaos:", err)
		var ue usageError
		if errors.As(err, &ue) || errors.Is(err, flag.ErrHelp) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// parseMutant maps the -mutant flag to an oracle mutant.
func parseMutant(s string) (oracle.Mutant, error) {
	for _, m := range []oracle.Mutant{oracle.MutantNone, oracle.MutantDropWithdraw, oracle.MutantShortestMatch} {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, usageError{fmt.Sprintf("unknown -mutant %q (known: none, drop-withdraw, shortest-match)", s)}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("clue-chaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	seed := fs.Int64("seed", 7, "seed for FIB, trace, fault schedule and probes")
	ops := fs.Int("ops", 10000, "update-storm length")
	routes := fs.Int("routes", 12000, "base FIB size")
	workers := fs.Int("workers", 4, "partition worker count")
	cycles := fs.Int("cycles", 3, "worker kill/recover cycles")
	checkpoints := fs.Int("checkpoints", 10, "oracle checkpoints over the storm")
	probes := fs.Int("probes", 2000, "random probes per checkpoint")
	lookers := fs.Int("lookers", 4, "concurrent lookup goroutines")
	maxP99 := fs.Duration("max-dispatch-p99", 0, "fail when the soak's dispatch p99 exceeds this (0 = 1s default, negative disables)")
	sequential := fs.Bool("sequential", false, "apply ops one at a time and verify TTF replay equivalence")
	feedMode := fs.Bool("feed", false, "run the replication chaos scenario (collector + two follower replicas)")
	feedBatch := fs.Int("feed-batch", 0, "updates per replicated batch (feed mode; 0 = default)")
	feedWindow := fs.Int("feed-window", 0, "collector replay window in batches (feed mode; 0 = default)")
	scenario := fs.String("scenario", "", "replay a scenario-lab program (session-reset, route-leak, update-burst, flash-crowd)")
	compareReb := fs.Bool("compare-rebalance", false, "run the paired flash-crowd rebalance comparison (off vs on)")
	minImprove := fs.Float64("min-improvement", 0, "rebalance comparison contract margin (0 = default 0.2)")
	stormOps := fs.Int("storm-ops", 0, "scenario storm size where generated from churn (0 = scenario default)")
	maxDivert := fs.Float64("max-divert-rate", 0, "scenario bound on diverted/dispatched (0 = contract default, negative disables)")
	maxConverge := fs.Duration("max-converge", 0, "scenario bound on time-to-converge after the storm (0 = contract default, negative disables)")
	mutant := fs.String("mutant", "none", "plant an oracle defect for scenario self-tests (none, drop-withdraw, shortest-match)")
	reproDir := fs.String("repro-dir", "", "write a shrunk JSON reproducer here when a scenario run fails")
	verbose := fs.Bool("v", false, "log faults and checkpoints to stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err.Error()}
	}

	if *compareReb {
		if *feedMode || *scenario != "" || *sequential {
			return usageError{"-compare-rebalance is its own mode: it excludes -feed, -scenario and -sequential"}
		}
		if *minImprove < 0 || *minImprove >= 1 {
			return usageError{fmt.Sprintf("-min-improvement %v must be in [0,1)", *minImprove)}
		}
		ccfg := chaos.RebalanceCompareConfig{
			Seed:           *seed,
			Routes:         *routes,
			Workers:        *workers,
			Lookers:        *lookers,
			MinImprovement: *minImprove,
		}
		// The shared defaults are sized for the soak; fall back to the
		// comparison's calibrated defaults unless the caller overrode them.
		if *routes == 12000 {
			ccfg.Routes = 0
		}
		if *workers == 4 {
			ccfg.Workers = 0
		}
		if *lookers == 4 {
			ccfg.Lookers = 0
		}
		if *verbose {
			ccfg.Log = errw
		}
		rep, err := chaos.CompareRebalance(ccfg)
		doc, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Fprintln(out, string(doc))
		return err
	}
	if *minImprove != 0 {
		return usageError{"-min-improvement requires -compare-rebalance"}
	}

	if *scenario != "" {
		if *feedMode {
			return usageError{"-scenario and -feed are mutually exclusive"}
		}
		if *sequential {
			return usageError{"-sequential only applies to the soak, not -scenario"}
		}
		known := false
		for _, n := range tracegen.ScenarioNames() {
			if *scenario == n {
				known = true
			}
		}
		if !known {
			return usageError{fmt.Sprintf("unknown scenario %q (known: %v)", *scenario, tracegen.ScenarioNames())}
		}
		if *maxDivert > 1 {
			return usageError{fmt.Sprintf("-max-divert-rate %v is a contradiction: diverted/dispatched can never exceed 1", *maxDivert)}
		}
		mut, err := parseMutant(*mutant)
		if err != nil {
			return err
		}
		scfg := chaos.ScenarioConfig{
			Name:           *scenario,
			Seed:           *seed,
			Routes:         *routes,
			StormOps:       *stormOps,
			Workers:        *workers,
			Lookers:        *lookers,
			Probes:         *probes,
			MaxDegradedP99: *maxP99,
			MaxDivertRate:  *maxDivert,
			MaxConverge:    *maxConverge,
			Mutant:         mut,
			ReproDir:       *reproDir,
		}
		// The shared defaults are sized for the soak; fall back to the
		// scenario/driver defaults unless the caller overrode them.
		if *routes == 12000 {
			scfg.Routes = 0
		}
		if *workers == 4 {
			scfg.Workers = 0
		}
		if *lookers == 4 {
			scfg.Lookers = 0
		}
		if *probes == 2000 {
			scfg.Probes = 0
		}
		if *verbose {
			scfg.Log = errw
		}
		rep, err := chaos.RunScenario(scfg)
		doc, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Fprintln(out, string(doc))
		return err
	}
	if *mutant != "none" || *reproDir != "" || *maxDivert != 0 || *maxConverge != 0 || *stormOps != 0 {
		return usageError{"-mutant/-repro-dir/-max-divert-rate/-max-converge/-storm-ops require -scenario"}
	}

	if *feedMode {
		fcfg := chaos.FeedConfig{
			Seed:      *seed,
			Routes:    *routes,
			Updates:   *ops,
			BatchSize: *feedBatch,
			Window:    *feedWindow,
			Workers:   *workers,
		}
		// The shared -ops/-routes defaults are sized for the soak; scale
		// them down unless the caller overrode them.
		if *ops == 10000 {
			fcfg.Updates = 0
		}
		if *routes == 12000 {
			fcfg.Routes = 0
		}
		if *workers == 4 {
			fcfg.Workers = 0
		}
		if *verbose {
			fcfg.Log = errw
		}
		rep, err := chaos.RunFeed(fcfg)
		doc, jerr := json.MarshalIndent(rep, "", "  ")
		if jerr != nil {
			return jerr
		}
		fmt.Fprintln(out, string(doc))
		return err
	}

	cfg := chaos.Config{
		Seed:                *seed,
		Ops:                 *ops,
		Routes:              *routes,
		Workers:             *workers,
		Cycles:              *cycles,
		Checkpoints:         *checkpoints,
		ProbesPerCheckpoint: *probes,
		Lookers:             *lookers,
		MaxDispatchP99:      *maxP99,
		Sequential:          *sequential,
	}
	if *verbose {
		cfg.Log = errw
	}
	rep, err := chaos.Run(cfg)
	doc, jerr := json.MarshalIndent(rep, "", "  ")
	if jerr != nil {
		return jerr
	}
	fmt.Fprintln(out, string(doc))
	return err
}
