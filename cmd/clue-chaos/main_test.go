package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSmallSoak(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-seed", "5", "-ops", "600", "-routes", "3000", "-cycles", "2",
		"-checkpoints", "3", "-probes", "200", "-lookers", "2", "-v",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	var rep struct {
		Ops          int `json:"ops"`
		Checkpoints  int `json:"checkpoints"`
		WrongAnswers int `json:"wrong_answers"`
		Kills        int `json:"kills"`
		Poisons      int `json:"poisons"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Ops != 600 || rep.Checkpoints == 0 || rep.WrongAnswers != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Kills+rep.Poisons == 0 {
		t.Fatalf("no faults injected: %+v", rep)
	}
	if !strings.Contains(errw.String(), "checkpoint") {
		t.Fatalf("-v produced no progress log: %q", errw.String())
	}
}

func TestRunFeedScenario(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-feed", "-seed", "3", "-ops", "600", "-routes", "1500",
		"-workers", "2", "-feed-batch", "4", "-feed-window", "12", "-v",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("run -feed: %v\nstderr: %s", err, errw.String())
	}
	var rep struct {
		Batches         uint64 `json:"batches"`
		LinkCuts        int    `json:"link_cuts"`
		Resumes         uint64 `json:"resumes"`
		SnapshotLoads   uint64 `json:"snapshot_loads"`
		HashMismatches  uint64 `json:"hash_mismatches"`
		ConvergedRoutes int    `json:"converged_routes"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Batches == 0 || rep.LinkCuts == 0 || rep.ConvergedRoutes == 0 {
		t.Fatalf("faults not exercised: %+v", rep)
	}
	if rep.Resumes == 0 || rep.SnapshotLoads < 3 {
		t.Fatalf("resume/re-snapshot paths not both taken: %+v", rep)
	}
	if rep.HashMismatches != 0 {
		t.Fatalf("hash mismatches: %+v", rep)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-ops", "not-a-number"}, &out, &errw); err == nil {
		t.Fatal("bad flag accepted")
	}
}
