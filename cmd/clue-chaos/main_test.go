package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRunSmallSoak(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-seed", "5", "-ops", "600", "-routes", "3000", "-cycles", "2",
		"-checkpoints", "3", "-probes", "200", "-lookers", "2", "-v",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	var rep struct {
		Ops          int `json:"ops"`
		Checkpoints  int `json:"checkpoints"`
		WrongAnswers int `json:"wrong_answers"`
		Kills        int `json:"kills"`
		Poisons      int `json:"poisons"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Ops != 600 || rep.Checkpoints == 0 || rep.WrongAnswers != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Kills+rep.Poisons == 0 {
		t.Fatalf("no faults injected: %+v", rep)
	}
	if !strings.Contains(errw.String(), "checkpoint") {
		t.Fatalf("-v produced no progress log: %q", errw.String())
	}
}

func TestRunFeedScenario(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-feed", "-seed", "3", "-ops", "600", "-routes", "1500",
		"-workers", "2", "-feed-batch", "4", "-feed-window", "12", "-v",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("run -feed: %v\nstderr: %s", err, errw.String())
	}
	var rep struct {
		Batches         uint64 `json:"batches"`
		LinkCuts        int    `json:"link_cuts"`
		Resumes         uint64 `json:"resumes"`
		SnapshotLoads   uint64 `json:"snapshot_loads"`
		HashMismatches  uint64 `json:"hash_mismatches"`
		ConvergedRoutes int    `json:"converged_routes"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Batches == 0 || rep.LinkCuts == 0 || rep.ConvergedRoutes == 0 {
		t.Fatalf("faults not exercised: %+v", rep)
	}
	if rep.Resumes == 0 || rep.SnapshotLoads < 3 {
		t.Fatalf("resume/re-snapshot paths not both taken: %+v", rep)
	}
	if rep.HashMismatches != 0 {
		t.Fatalf("hash mismatches: %+v", rep)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-ops", "not-a-number"}, &out, &errw)
	if err == nil {
		t.Fatal("bad flag accepted")
	}
	if !isUsage(err) {
		t.Fatalf("parse error should be a usage error (exit 2), got %T: %v", err, err)
	}
}

func isUsage(err error) bool {
	var ue usageError
	return errors.As(err, &ue)
}

// TestRunScenarioMode replays a small scenario through the CLI and
// checks the JSON report reaches stdout.
func TestRunScenarioMode(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-scenario", "update-burst", "-seed", "5", "-routes", "900",
		"-storm-ops", "200", "-workers", "2", "-lookers", "1", "-probes", "150",
		"-max-dispatch-p99", "-1s", "-max-divert-rate", "-1", "-v",
	}, &out, &errw)
	if err != nil {
		t.Fatalf("scenario run: %v\nstderr: %s", err, errw.String())
	}
	var rep struct {
		Scenario     string `json:"scenario"`
		Ops          int    `json:"ops"`
		WrongAnswers int    `json:"wrong_answers"`
		Converged    bool   `json:"converged"`
		TableHash    string `json:"table_hash"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, out.String())
	}
	if rep.Scenario != "update-burst" || rep.Ops == 0 || rep.WrongAnswers != 0 || !rep.Converged {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if len(rep.TableHash) != 16 {
		t.Fatalf("no table hash in report: %+v", rep)
	}
	if !strings.Contains(errw.String(), "checkpoint") {
		t.Fatalf("-v produced no progress log: %q", errw.String())
	}
}

// TestRunScenarioUsageErrors pins every invalid invocation to the
// usage-error class (exit 2 in main), distinct from run failures.
func TestRunScenarioUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "no-such-storm"},
		{"-scenario", "route-leak", "-feed"},
		{"-scenario", "route-leak", "-sequential"},
		{"-scenario", "route-leak", "-max-divert-rate", "1.5"},
		{"-scenario", "route-leak", "-mutant", "bit-rot"},
		{"-mutant", "drop-withdraw"}, // scenario-only flag without -scenario
		{"-repro-dir", "/tmp/x"},
		{"-max-converge", "5s"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		err := run(args, &out, &errw)
		if err == nil {
			t.Fatalf("%v accepted", args)
		}
		if !isUsage(err) {
			t.Fatalf("%v should be a usage error, got %T: %v", args, err, err)
		}
		if out.Len() != 0 {
			t.Fatalf("%v wrote a report despite the usage error: %s", args, out.String())
		}
	}
}

// TestRunScenarioMutantExitPath: a planted mutant is a *run* failure
// (exit 1), not a usage error — and the report still reaches stdout so
// CI can archive it.
func TestRunScenarioMutantExitPath(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{
		"-scenario", "session-reset", "-seed", "5", "-routes", "800",
		"-workers", "2", "-lookers", "1", "-probes", "100",
		"-max-dispatch-p99", "-1s", "-max-divert-rate", "-1",
		"-max-converge", "300ms", "-mutant", "drop-withdraw",
	}, &out, &errw)
	if err == nil {
		t.Fatal("mutant run passed")
	}
	if isUsage(err) {
		t.Fatalf("run failure misclassified as usage error: %v", err)
	}
	var rep struct {
		WrongAnswers int `json:"wrong_answers"`
	}
	if jerr := json.Unmarshal(out.Bytes(), &rep); jerr != nil {
		t.Fatalf("no report on failure: %v\n%s", jerr, out.String())
	}
	if rep.WrongAnswers == 0 {
		t.Fatalf("mutant not caught mid-storm: %+v, err=%v", rep, err)
	}
}
