package clue

import (
	"testing"

	"clue/internal/fibgen"
)

func sampleRoutes(t *testing.T, n int, seed int64) []Route {
	t.Helper()
	fib, err := fibgen.Generate(fibgen.Config{Seed: seed, Routes: n})
	if err != nil {
		t.Fatal(err)
	}
	return fib.Routes()
}

func TestPublicQuickstartFlow(t *testing.T) {
	routes := sampleRoutes(t, 3000, 1)
	sys, err := New(routes, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Original route addresses must resolve to their FIB hops.
	hop, ok := sys.Lookup(routes[0].Prefix.First())
	if !ok || hop == NoRoute {
		t.Errorf("lookup of a FIB address failed: (%d, %v)", hop, ok)
	}
	ttf, err := sys.Announce(MustParsePrefix("198.51.100.0/24"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ttf.Total() <= 0 {
		t.Errorf("TTF = %+v", ttf)
	}
	hop, ok = sys.Lookup(MustParseAddr("198.51.100.1"))
	if !ok || hop != 3 {
		t.Errorf("lookup after announce = (%d, %v)", hop, ok)
	}
	if _, err := sys.Withdraw(MustParsePrefix("198.51.100.0/24")); err != nil {
		t.Fatal(err)
	}
}

func TestPublicCompress(t *testing.T) {
	routes := sampleRoutes(t, 5000, 2)
	table, st := Compress(routes)
	if st.Original != len(routes) {
		t.Errorf("Original = %d, want %d", st.Original, len(routes))
	}
	if table.Len() != st.Compressed {
		t.Errorf("Len = %d, stats say %d", table.Len(), st.Compressed)
	}
	if st.Ratio() >= 1 {
		t.Errorf("ratio = %v, want < 1", st.Ratio())
	}
	// Forwarding equivalence spot check on route boundary addresses.
	for _, r := range routes[:200] {
		hop, ok := table.Lookup(r.Prefix.First())
		if !ok {
			t.Fatalf("no match for %s", r.Prefix.First())
		}
		_ = hop
	}
	// Disjointness means Routes are sorted and non-overlapping.
	rs := table.Routes()
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Prefix.Overlaps(rs[i].Prefix) {
			t.Fatalf("overlap between %s and %s", rs[i-1].Prefix, rs[i].Prefix)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	a, err := ParseAddr("192.0.2.1")
	if err != nil || a.String() != "192.0.2.1" {
		t.Errorf("ParseAddr = (%v, %v)", a, err)
	}
	p, err := ParsePrefix("192.0.2.0/24")
	if err != nil || p.String() != "192.0.2.0/24" {
		t.Errorf("ParsePrefix = (%v, %v)", p, err)
	}
	if _, err := ParsePrefix("192.0.2.1/24"); err == nil {
		t.Error("host bits accepted")
	}
	if DefaultCosts().TCAMAccessNs != 24 {
		t.Error("default TCAM access cost should be 24 ns")
	}
}
